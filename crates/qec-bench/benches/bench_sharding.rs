//! Sharded scatter/gather serving vs the single-engine path: cold-build
//! throughput × shard count over a large synthetic corpus.
//!
//! The workload is the sharding tentpole's target shape: a corpus large
//! enough that retrieval + ranking dominate the cold build (dense
//! head-rank queries, small `top_k`), served with the cache **disabled**
//! so every request pays the full scatter → rank → merge pipeline. The
//! 1-shard configuration is the plain [`QecEngine`](qec_engine::QecEngine)
//! path (per-document binary-search scoring plus a full sort of every
//! match); sharded configurations scatter per-shard merge-join scoring
//! with bounded top-K selection and k-way merge the results.
//!
//! **Parity is asserted in every mode** (smoke mode included, which is
//! what CI runs): each shard count's responses must be bit-identical to
//! the single engine's. Timed mode additionally asserts the acceptance
//! claims: sharding never loses to the single engine, and 8 shards serve
//! at ≥ 3× the 1-shard throughput. On a single-core runner that margin
//! comes from the shard kernel's algorithmic gap (O(M + df) merge-join
//! scoring and O(M + K·log K) selection vs O(M·log df) scoring and
//! O(M·log M) sorting over M matches); multi-core runners add near-linear
//! scatter parallelism on top, which is why the grid still reports every
//! shard count.
//!
//! Set `QEC_BENCH_SHARDING_JSON=/path/file.json` to write the grid as a
//! JSON array (see `BENCH_sharding.json` at the repo root).

use std::hint::black_box;

use qec_bench::harness::Harness;
use qec_bench::synth::{synth_corpus, CorpusSpec};
use qec_engine::{ExpandRequest, ExpandResponse, ShardedEngine, ShardedEngineBuilder};
use qec_index::Corpus;

/// Head-rank queries: dense result sets whose ranking cost dwarfs the
/// (identical on both paths) clustering of the small top-K arena.
const QUERIES: &[&str] = &["w0", "w1", "w2", "w3"];

/// Shard counts under test; 1 is the plain single-engine baseline.
const SHARD_GRID: &[usize] = &[1, 2, 4, 8];

fn corpus_spec(test_mode: bool) -> CorpusSpec {
    if test_mode {
        CorpusSpec {
            num_docs: 4_000,
            vocab: 2_000,
            doc_len: 8,
            ..CorpusSpec::default()
        }
    } else {
        // Multi-million-doc corpus with short documents: the head query
        // matches ~45% of it, so cold builds are retrieval/ranking-bound.
        CorpusSpec {
            num_docs: 2_000_000,
            vocab: 10_000,
            doc_len: 8,
            ..CorpusSpec::default()
        }
    }
}

// The shared pool keeps its auto-probed size (the machine's parallelism):
// over-subscribing a small runner with a pinned thread count would charge
// the scatter path pure context-switch overhead, and under-sizing a large
// one would hide its scatter parallelism.
fn engine(corpus: Corpus, shards: usize) -> ShardedEngine {
    ShardedEngineBuilder::from_corpus(corpus)
        .num_shards(shards)
        .cache_enabled(false) // every request pays the full cold build
        .build()
}

fn request(query: &str) -> ExpandRequest<'_> {
    ExpandRequest {
        k_clusters: 4,
        top_k: 100,
        ..ExpandRequest::new(query)
    }
}

/// Serves every query once, cold; returns the responses for parity
/// checks.
fn serve_round(engine: &ShardedEngine) -> Vec<ExpandResponse> {
    QUERIES
        .iter()
        .map(|q| engine.expand(black_box(&request(q))))
        .collect()
}

fn main() {
    let mut h = Harness::new("sharding");
    let test_mode = h.test_mode();
    let spec = corpus_spec(test_mode);
    println!(
        "# corpus: {} docs × {} tokens (vocab {})",
        spec.num_docs, spec.doc_len, spec.vocab
    );
    let corpus = synth_corpus(&spec);

    // Parity first, in every mode: every shard count must serve every
    // query bit-identical to the single engine.
    let baseline = engine(corpus.clone(), 1);
    let expected = serve_round(&baseline);
    let mut speedups: Vec<(usize, f64)> = Vec::new();
    for &shards in SHARD_GRID {
        let sharded = engine(corpus.clone(), shards);
        if shards > 1 {
            for (resp, want) in serve_round(&sharded).iter().zip(&expected) {
                assert!(
                    resp.clusters() == want.clusters()
                        && resp.stats.results == want.stats.results
                        && resp.stats.candidates == want.stats.candidates,
                    "shards={shards}: sharded response diverged from the single engine"
                );
            }
            println!("sharding/parity shards={shards} == single engine: ok");
        }
        h.bench(&format!("cold_round/shards={shards}"), || {
            serve_round(&sharded)
        });
        if !test_mode {
            let base = h
                .median_of("cold_round/shards=1")
                .expect("baseline timed first");
            let this = h
                .median_of(&format!("cold_round/shards={shards}"))
                .expect("case just timed");
            let speedup = base / this;
            println!("sharding/speedup shards={shards}: {speedup:.2}x vs 1 shard");
            speedups.push((shards, speedup));
        }
    }

    if !test_mode {
        for &(shards, speedup) in &speedups {
            assert!(
                speedup >= 0.95,
                "sharding must not lose to the single engine: \
                 shards={shards} ran at {speedup:.2}x"
            );
        }
        let &(_, at8) = speedups
            .iter()
            .find(|(s, _)| *s == 8)
            .expect("8-shard case in grid");
        assert!(
            at8 >= 3.0,
            "acceptance: 8 shards must serve at >= 3x the 1-shard \
             throughput, measured {at8:.2}x"
        );

        if let Ok(path) = std::env::var("QEC_BENCH_SHARDING_JSON") {
            use std::io::Write;
            let mut f =
                std::fs::File::create(&path).unwrap_or_else(|e| panic!("create {path}: {e}"));
            writeln!(f, "[").expect("write json");
            for (i, (shards, speedup)) in speedups.iter().enumerate() {
                let ns = h
                    .median_of(&format!("cold_round/shards={shards}"))
                    .unwrap_or(f64::NAN)
                    / QUERIES.len() as f64;
                writeln!(
                    f,
                    "  {{\"shards\":{},\"ns_per_request\":{:.1},\"speedup_vs_1\":{:.3}}}{}",
                    shards,
                    ns,
                    speedup,
                    if i + 1 < speedups.len() { "," } else { "" },
                )
                .expect("write json");
            }
            writeln!(f, "]").expect("write json");
            println!("# wrote {path}");
        }
    }

    h.finish();
}
