//! End-to-end demo of the paper's flow through the serving facade:
//! build a [`QecEngine`] once, then serve one request per strategy —
//! retrieval, ranking, sense clustering and per-cluster expansion all
//! happen behind `engine.expand`.
//!
//! Run: `cargo run --release -p qec-bench --example pipeline [query]`

use qec_engine::{
    DocumentSpec, EngineBuilder, ExpandRequest, ExpandResponse, ExpandStrategy, QecEngine,
};

fn main() {
    let query = std::env::args().nth(1).unwrap_or_else(|| "apple".into());

    // A tiny two-sense corpus in the spirit of the paper's Example 1.1.
    let docs = [
        ("Apple Inc", "apple computers iphone ipad store cupertino"),
        ("Apple Store", "apple store retail genius bar iphone"),
        (
            "Apple earnings",
            "apple company quarterly earnings iphone sales",
        ),
        ("Apple orchard", "apple fruit orchard harvest cider"),
        ("Apple pie", "apple fruit pie baking recipe cinnamon"),
        ("Apple varieties", "apple fruit varieties fuji gala orchard"),
        ("Banana bread", "banana fruit bread baking recipe"),
        ("Jobs biography", "steve jobs apple founder biography"),
    ];
    let engine = EngineBuilder::new()
        .documents(
            docs.iter()
                .map(|&(title, body)| DocumentSpec::text(title, body)),
        )
        .build();

    let base = ExpandRequest {
        k_clusters: 2,
        ..ExpandRequest::new(&query)
    };
    let first = engine.expand(&base);
    if first.clusters().is_empty() {
        println!("no results for {query:?}");
        return;
    }
    println!("query {query:?}: {} results", first.stats.results);
    print_response(&engine, &query, &first);
    engine.recycle(first);

    // The same request under the baseline strategies. The strategy is
    // part of the arena-cache key, so each strategy's first serve builds
    // its own pipeline entry (hit: false) and repeats hit it (hit: true).
    for strategy in [ExpandStrategy::Pebc, ExpandStrategy::ExactDeltaF] {
        let resp = engine.expand(&ExpandRequest {
            strategy,
            ..base.clone()
        });
        println!(
            "\nstrategy {} (arena cache hit: {}):",
            resp.stats.strategy, resp.stats.arena_cache_hit
        );
        print_response(&engine, &query, &resp);
        engine.recycle(resp);
    }

    let repeat = engine.expand(&base);
    println!(
        "\nrepeat strategy {} (arena cache hit: {})",
        repeat.stats.strategy, repeat.stats.arena_cache_hit
    );
    engine.recycle(repeat);
}

fn print_response(engine: &QecEngine, query: &str, resp: &ExpandResponse) {
    let corpus = engine.corpus();
    for (c, cluster) in resp.clusters().iter().enumerate() {
        let members: Vec<&str> = cluster
            .docs
            .iter()
            .map(|&d| corpus.doc(d).title.as_str())
            .collect();
        let added: Vec<&str> = cluster.added.iter().map(|&t| corpus.term_name(t)).collect();
        println!(
            "cluster {c}: {members:?}\n  expanded query: {query} + {added:?} \
             (P {:.2}, R {:.2}, F {:.2})",
            cluster.quality.precision, cluster.quality.recall, cluster.quality.fmeasure
        );
    }
}
