//! End-to-end demo of the paper's flow through the public APIs only:
//! analyze → index → search → rank → cluster → expand, printing one
//! expanded query per cluster.
//!
//! Run: `cargo run --release -p qec-bench --example pipeline [query]`

use qec_cluster::{doc_tf_vector, kmeans, KMeansConfig};
use qec_core::{expand_clusters, ArenaConfig, ExpansionArena, IskrConfig, ResultSet};
use qec_index::{rank_and_query, CorpusBuilder, DocumentSpec};

fn main() {
    let query = std::env::args().nth(1).unwrap_or_else(|| "apple".into());

    // A tiny two-sense corpus in the spirit of the paper's Example 1.1.
    let mut b = CorpusBuilder::new();
    let docs = [
        ("Apple Inc", "apple computers iphone ipad store cupertino"),
        ("Apple Store", "apple store retail genius bar iphone"),
        ("Apple earnings", "apple company quarterly earnings iphone sales"),
        ("Apple orchard", "apple fruit orchard harvest cider"),
        ("Apple pie", "apple fruit pie baking recipe cinnamon"),
        ("Apple varieties", "apple fruit varieties fuji gala orchard"),
        ("Banana bread", "banana fruit bread baking recipe"),
        ("Jobs biography", "steve jobs apple founder biography"),
    ];
    for (title, body) in docs {
        b.add_document(DocumentSpec::text(title, body));
    }
    let corpus = b.build();

    // Retrieve + rank the user query.
    let terms = corpus.query_terms(&query);
    let hits = rank_and_query(&corpus, &query);
    if hits.is_empty() {
        println!("no results for {query:?}");
        return;
    }
    println!("query {query:?}: {} results", hits.len());

    // Cluster the results by cosine k-means over TF vectors.
    let vectors: Vec<_> = hits.iter().map(|h| doc_tf_vector(&corpus, h.doc)).collect();
    let assignment = kmeans(&vectors, &KMeansConfig { k: 2, ..Default::default() });

    // Build the shared expansion arena and one bitset per cluster.
    let result_docs: Vec<_> = hits.iter().map(|h| h.doc).collect();
    let weights: Vec<f64> = hits.iter().map(|h| h.score).collect();
    let arena = ExpansionArena::build(
        &corpus,
        &result_docs,
        Some(&weights),
        &terms,
        &ArenaConfig { candidate_fraction: 1.0, min_candidates: 0 },
    );
    let clusters: Vec<ResultSet> = (0..assignment.num_clusters())
        .map(|c| {
            ResultSet::from_indices(
                arena.size(),
                (0..arena.size()).filter(|&i| assignment.cluster_of(i) == c as u32),
            )
        })
        .filter(|s| !s.is_empty())
        .collect();

    // Expand every cluster (parallel across clusters).
    let expanded = expand_clusters(&arena, &clusters, &IskrConfig::default());
    for (c, (cluster, exp)) in clusters.iter().zip(&expanded).enumerate() {
        let members: Vec<&str> = cluster
            .iter()
            .map(|i| corpus.doc(result_docs[i]).title.as_str())
            .collect();
        let added: Vec<&str> = exp
            .added
            .iter()
            .map(|&k| corpus.term_name(arena.candidate(k).term))
            .collect();
        println!(
            "cluster {c}: {members:?}\n  expanded query: {query} + {added:?} \
             (P {:.2}, R {:.2}, F {:.2})",
            exp.quality.precision, exp.quality.recall, exp.quality.fmeasure
        );
    }
}
