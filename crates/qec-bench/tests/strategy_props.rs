//! Property tests for the [`Expander`] strategy layer over seeded
//! synthetic instances: the trait must be a zero-cost seam (bit-identical
//! to the direct kernels), and every strategy must respect its iteration
//! budget.

use qec_bench::{synth_arena, ArenaSpec};
use qec_core::{
    iskr_into, ExactDeltaF, ExpandedQuery, Expander, FMeasureConfig, Iskr, IskrConfig, IskrScratch,
    Pebc, PebcConfig, QecInstance,
};

/// Seeded instance sweep: every cluster of several arena shapes.
fn for_each_instance(mut f: impl FnMut(&QecInstance<'_>)) {
    for (arena_size, seed) in [(30usize, 3u64), (100, 7), (100, 41), (500, 13)] {
        let (arena, clusters) = synth_arena(&ArenaSpec::top(arena_size, seed));
        for cluster in &clusters {
            f(&QecInstance::new(&arena, cluster.clone()));
        }
    }
}

#[test]
fn iskr_via_trait_is_bit_identical_to_direct_kernel() {
    let config = IskrConfig::default();
    let strategy = Iskr(config.clone());
    let mut trait_scratch = IskrScratch::new();
    let mut direct_scratch = IskrScratch::new();
    let mut out = ExpandedQuery::default();
    for_each_instance(|inst| {
        strategy.expand_into(inst, &mut trait_scratch, &mut out);
        let quality = iskr_into(inst, &config, &mut direct_scratch);
        assert_eq!(out.quality, quality);
        assert_eq!(out.added, direct_scratch.added());
        // And the convenience path (fresh scratch) agrees too.
        assert_eq!(strategy.expand(inst), out);
    });
}

#[test]
fn all_strategies_respect_iteration_budgets() {
    for budget in [0usize, 1, 2, 5] {
        let iskr = Iskr(IskrConfig {
            max_iters: budget,
            ..Default::default()
        });
        let exact = ExactDeltaF(FMeasureConfig {
            max_iters: budget,
            ..Default::default()
        });
        let pebc = Pebc(PebcConfig {
            max_keywords: budget,
            ..Default::default()
        });
        let strategies: [&dyn Expander; 3] = [&iskr, &exact, &pebc];
        let mut scratch = IskrScratch::new();
        let mut out = ExpandedQuery::default();
        for_each_instance(|inst| {
            for s in strategies {
                s.expand_into(inst, &mut scratch, &mut out);
                // Every iteration adds at most one keyword, so the budget
                // bounds the expansion size for all three strategies.
                assert!(
                    out.added.len() <= budget,
                    "{} exceeded budget {budget}: {:?}",
                    s.name(),
                    out.added
                );
            }
        });
    }
}

#[test]
fn budgeted_strategies_still_produce_valid_queries() {
    // With a generous budget, every strategy's reported quality must match
    // re-evaluating its added set from scratch (no stale state leaks
    // through the shared scratch).
    let iskr = Iskr(IskrConfig::default());
    let exact = ExactDeltaF(FMeasureConfig::default());
    let pebc = Pebc(PebcConfig::default());
    let strategies: [&dyn Expander; 3] = [&iskr, &exact, &pebc];
    let mut scratch = IskrScratch::new();
    let mut out = ExpandedQuery::default();
    for_each_instance(|inst| {
        for s in strategies {
            s.expand_into(inst, &mut scratch, &mut out);
            let reeval = inst.quality_of_added(&out.added);
            assert_eq!(out.quality, reeval, "{}", s.name());
            assert!(
                out.added.windows(2).all(|w| w[0] < w[1]),
                "{} sorted",
                s.name()
            );
        }
    });
}
