//! Minimal timing harness — the offline-build substitute for criterion.
//!
//! Protocol per benchmark: a warmup phase sizes the iteration batch so one
//! sample costs ≈ `SAMPLE_TARGET`, then `SAMPLES` batches are timed and
//! the per-iteration **median** (robust to scheduler noise) and minimum are
//! reported. `cargo bench -- --test` runs every closure exactly once and
//! skips timing, which is what CI uses to keep the benches compiling and
//! correct without paying for measurement.
//!
//! Set `QEC_BENCH_JSON=/path/file.jsonl` to also **append** the results as
//! JSON lines (one object per case; append-mode so the independent bench
//! binaries can share one file). `BENCH_baseline.json` at the repo root is
//! the JSON-array form of such a run — see the README for the exact
//! regeneration recipe (fresh `.jsonl`, then a one-line conversion).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Wall-clock budget per timed sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);
/// Timed samples per benchmark.
const SAMPLES: usize = 15;
/// Warmup budget before sampling starts.
const WARMUP: Duration = Duration::from_millis(50);

/// One benchmark's summary statistics.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Fully qualified name, `group/case`.
    pub name: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Minimum nanoseconds per iteration.
    pub min_ns: f64,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
}

/// Bench registry + runner for one bench binary.
pub struct Harness {
    group: String,
    test_mode: bool,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Harness {
    /// Parses the argv conventions `cargo bench` uses: `--test` selects
    /// smoke mode (criterion's compile-check convention), `--bench` (always
    /// passed by cargo) is ignored, and a bare string filters cases by
    /// substring.
    pub fn new(group: &str) -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" | "--nocapture" => {}
                s if !s.starts_with('-') => filter = Some(s.to_string()),
                _ => {}
            }
        }
        println!(
            "# {group}{}",
            if test_mode {
                " (--test: smoke mode)"
            } else {
                ""
            }
        );
        Self {
            group: group.to_string(),
            test_mode,
            filter,
            results: Vec::new(),
        }
    }

    /// Whether this run only smoke-tests the closures.
    pub fn test_mode(&self) -> bool {
        self.test_mode
    }

    /// Times `f`, which performs exactly one iteration of the workload per
    /// call. Wrap inputs in [`black_box`] inside the closure as needed.
    pub fn bench<R, F: FnMut() -> R>(&mut self, case: &str, mut f: F) {
        let name = format!("{}/{case}", self.group);
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            black_box(f());
            println!("{name:<56} ok (smoke)");
            return;
        }

        // Warmup, measuring cost-per-iter to size the sample batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP || warm_iters < 3 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters_per_sample = ((SAMPLE_TARGET.as_secs_f64() / per_iter).ceil() as u64).max(1);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median_ns = samples_ns[samples_ns.len() / 2];
        let min_ns = samples_ns[0];
        println!(
            "{name:<56} median {:>12} min {:>12}  ({iters_per_sample} iters/sample)",
            fmt_ns(median_ns),
            fmt_ns(min_ns),
        );
        self.results.push(BenchResult {
            name,
            median_ns,
            min_ns,
            iters_per_sample,
        });
    }

    /// Median of a finished case, for cross-case comparisons inside a bench
    /// binary (e.g. the ablation speedup check).
    pub fn median_of(&self, case: &str) -> Option<f64> {
        let name = format!("{}/{case}", self.group);
        self.results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.median_ns)
    }

    /// Prints the footer and, when `QEC_BENCH_JSON` is set, appends the
    /// group's results to that file as JSON lines.
    pub fn finish(self) {
        if self.test_mode {
            println!("# {}: all cases smoke-tested", self.group);
            return;
        }
        if let Ok(path) = std::env::var("QEC_BENCH_JSON") {
            use std::io::Write;
            let mut out = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .unwrap_or_else(|e| panic!("open {path}: {e}"));
            for r in &self.results {
                writeln!(
                    out,
                    "{{\"name\":\"{}\",\"median_ns\":{:.1},\"min_ns\":{:.1},\"iters_per_sample\":{}}}",
                    r.name, r.median_ns, r.min_ns, r.iters_per_sample
                )
                .expect("write bench json");
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(12.0), "12 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
    }
}
