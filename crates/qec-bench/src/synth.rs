//! Seeded synthetic workload generators.
//!
//! Everything is driven by [`SplitMix64`], so a `(spec, seed)` pair always
//! produces the identical corpus or arena on every platform — benchmark
//! numbers are comparable across machines and PRs.

use std::fmt::Write;

use qec_cluster::SplitMix64;
use qec_core::{Candidate, ExpansionArena, ResultSet};
use qec_index::{Corpus, CorpusBuilder, DocumentSpec};
use qec_text::TermId;

/// Shape of a synthetic text corpus.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// Number of documents.
    pub num_docs: usize,
    /// Vocabulary size the Zipfian draws range over.
    pub vocab: usize,
    /// Tokens per document.
    pub doc_len: usize,
    /// Zipf exponent (1.0 ≈ natural text; higher skews harder).
    pub zipf_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        Self {
            num_docs: 20_000,
            vocab: 10_000,
            doc_len: 40,
            zipf_s: 1.0,
            seed: 42,
        }
    }
}

/// Builds a corpus of Zipf-distributed synthetic tokens. Token `wK` has
/// rank `K`, so low-K terms are dense (they freeze to bitmaps) and high-K
/// terms are sparse — exactly the mix the hybrid index must handle.
pub fn synth_corpus(spec: &CorpusSpec) -> Corpus {
    let mut rng = SplitMix64::seed_from_u64(spec.seed);
    let sampler = ZipfSampler::new(spec.vocab, spec.zipf_s);
    // Stopword filtering and stemming are irrelevant to synthetic tokens;
    // body strings are assembled once per doc and fed through the normal
    // analyzer path so the bench exercises the real build pipeline.
    let mut builder = CorpusBuilder::new();
    let mut body = String::with_capacity(spec.doc_len * 8);
    for _ in 0..spec.num_docs {
        body.clear();
        for _ in 0..spec.doc_len {
            let rank = sampler.sample(&mut rng);
            let _ = write!(body, "w{rank} ");
        }
        builder.add_document(DocumentSpec::text("", &body));
    }
    builder.build()
}

/// Term id of synthetic token rank `rank` in `corpus`, if it was drawn.
pub fn synth_term(corpus: &Corpus, rank: usize) -> Option<TermId> {
    corpus.keyword_term(&format!("w{rank}"))
}

/// Shape of a synthetic expansion arena.
#[derive(Debug, Clone)]
pub struct ArenaSpec {
    /// Arena size (the paper's workloads: 30, 100, 500).
    pub arena_size: usize,
    /// Number of candidate keywords.
    pub num_candidates: usize,
    /// Number of latent clusters (senses) the results split into.
    pub num_clusters: usize,
    /// Probability a candidate is absent from a result of the sense it
    /// discriminates against (its elimination power).
    pub discrimination: f64,
    /// Stray absences per candidate outside its discriminated sense
    /// (the noise that makes elimination sets ragged).
    pub leaks: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ArenaSpec {
    /// The paper-shaped workload for a given arena size.
    pub fn top(arena_size: usize, seed: u64) -> Self {
        Self {
            arena_size,
            // §C keeps the top-20% tfidf words; candidate counts scale
            // roughly with arena size in the paper's corpora.
            num_candidates: (arena_size / 2).clamp(16, 256),
            num_clusters: 8,
            discrimination: 0.9,
            leaks: 1,
            seed,
        }
    }
}

/// Generates a clustered arena mirroring the paper's premise: results carry
/// latent sense labels (the clusters), and each candidate keyword
/// *discriminates against* one foreign sense — it is absent from that
/// sense's results with probability `discrimination`, present elsewhere
/// except for `leaks` stray absences. Elimination sets are therefore
/// concentrated on one cluster plus noise, so a move's delta affects only
/// the keywords discriminating the same sense — the §3 maintenance regime.
/// The output is the (arena, clusters-as-bitsets) pair that
/// `expand_clusters` consumes.
pub fn synth_arena(spec: &ArenaSpec) -> (ExpansionArena, Vec<ResultSet>) {
    let mut rng = SplitMix64::seed_from_u64(spec.seed);
    let n = spec.arena_size;
    let k = spec.num_clusters.max(1);

    let labels: Vec<usize> = (0..n).map(|_| rng.below(k)).collect();

    let candidates: Vec<Candidate> = (0..spec.num_candidates)
        .map(|i| {
            let anti = i % k;
            let mut set = ResultSet::full(n);
            for (j, &label) in labels.iter().enumerate() {
                if label == anti && rng.f64() < spec.discrimination {
                    set.remove(j);
                }
            }
            for _ in 0..spec.leaks {
                set.remove(rng.below(n));
            }
            Candidate {
                term: TermId(i as u32),
                contains: set,
            }
        })
        .collect();

    // Rank-decaying weights mimic the tfidf ranking scores of real runs.
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64).sqrt()).collect();
    let arena = ExpansionArena::from_parts(weights, candidates);

    let clusters: Vec<ResultSet> = (0..k)
        .map(|c| {
            ResultSet::from_indices(
                n,
                labels
                    .iter()
                    .enumerate()
                    .filter(|&(_, &l)| l == c)
                    .map(|(j, _)| j),
            )
        })
        .filter(|s| !s.is_empty())
        .collect();
    (arena, clusters)
}

/// Zipf sampler over ranks `0..n` by inverse-CDF on a precomputed table
/// (`s = 0` degenerates to uniform). Drives both the corpus generator and
/// the query-skew replay of `bench_scalability`.
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the CDF table for ranks `0..n` with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / (1.0 + rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_zipfian() {
        let spec = CorpusSpec {
            num_docs: 500,
            vocab: 200,
            doc_len: 20,
            ..Default::default()
        };
        let c1 = synth_corpus(&spec);
        let c2 = synth_corpus(&spec);
        assert_eq!(c1.num_docs(), 500);
        assert_eq!(c1.vocab_size(), c2.vocab_size());
        // Rank-0 token must be much denser than a tail token.
        let head = synth_term(&c1, 0).expect("head token drawn");
        let head_df = c1.index().df(head);
        let tail_df = synth_term(&c1, 180).map(|t| c1.index().df(t)).unwrap_or(0);
        assert!(head_df > tail_df * 3, "head {head_df} vs tail {tail_df}");
    }

    #[test]
    fn arena_matches_spec_shape() {
        let spec = ArenaSpec::top(100, 7);
        let (arena, clusters) = synth_arena(&spec);
        assert_eq!(arena.size(), 100);
        assert_eq!(arena.num_candidates(), spec.num_candidates);
        let total: usize = clusters.iter().map(|c| c.len()).sum();
        assert_eq!(total, 100, "clusters partition the arena");
        for (i, a) in clusters.iter().enumerate() {
            for b in &clusters[i + 1..] {
                assert!(!a.intersects(b), "clusters are disjoint");
            }
        }
    }

    #[test]
    fn arena_is_deterministic() {
        let spec = ArenaSpec::top(30, 99);
        let (a1, c1) = synth_arena(&spec);
        let (a2, c2) = synth_arena(&spec);
        assert_eq!(c1, c2);
        for (x, y) in a1.candidates.iter().zip(&a2.candidates) {
            assert_eq!(x.contains, y.contains);
        }
    }
}
