//! Synthetic workloads and the timing harness for the QEC benchmarks.
//!
//! * [`synth`] — seeded generators: Zipfian text corpora for the retrieval
//!   benches and clustered expansion arenas in the paper's top-30/100/500
//!   workload shapes.
//! * [`harness`] — the offline substitute for criterion: warmup,
//!   median-of-samples timing, `cargo bench -- --test` smoke mode, and
//!   JSON emission for `BENCH_baseline.json`.

pub mod harness;
pub mod synth;

pub use harness::Harness;
pub use synth::{synth_arena, synth_corpus, synth_term, ArenaSpec, CorpusSpec};
