//! Corruption fuzz: no byte pattern on disk may panic the loader.
//!
//! Three deterministic sweeps over a real snapshot image:
//!
//! 1. **bit-flip** — every bit of every byte flipped in turn: the
//!    structural tier (magic/version/framing/CRCs) must reject each one
//!    with a typed [`SnapshotError`];
//! 2. **truncate** — every prefix length: always a typed error, never a
//!    panic, covering every section boundary by construction;
//! 3. **semantic** — payload bytes flipped *and all CRCs re-fixed*, so
//!    the structural tier passes and the semantic validation pass is the
//!    one under fire: it must return (`Ok` for benign flips, e.g. in a
//!    title byte, typed `Err` for inconsistent ones) — and never panic.
//!
//! Plus targeted probes pinning the exact error variant at each section
//! boundary: header magic, version, section tags/lengths/checksums of
//! dictionary, postings, bitmaps, and the trailer CRC.

use std::path::{Path, PathBuf};

use qec_index::{Corpus, CorpusBuilder, DocumentSpec, Feature};
use qec_snapshot::{crc32, load_corpus, save_corpus, SnapshotError};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qec-snap-fuzz-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Small but representative: dense + sparse terms, features, labels, a
/// zero-term document — every section non-trivial, file small enough to
/// fuzz every bit.
fn corpus() -> Corpus {
    let mut b = CorpusBuilder::new();
    for i in 0..30 {
        b.add_document(DocumentSpec::text(
            format!("t{i}"),
            format!("common word{} java{}", i % 4, i % 9),
        ));
    }
    b.add_document(DocumentSpec::text("", "the of"));
    b.add_document(
        DocumentSpec::structured("cam", vec![Feature::new("camera", "brand", "canon")])
            .with_label(3),
    );
    b.build()
}

fn snapshot_bytes(tag: &str) -> (PathBuf, Vec<u8>) {
    let dir = temp_dir(tag);
    let path = dir.join("fuzz.qsnap");
    save_corpus(&corpus(), &path).expect("save");
    let bytes = std::fs::read(&path).unwrap();
    (dir, bytes)
}

fn load_bytes(dir: &Path, mutated: &[u8]) -> Result<(), SnapshotError> {
    let path = dir.join("mutated.qsnap");
    std::fs::write(&path, mutated).unwrap();
    load_corpus(&path).map(|_| ())
}

/// Byte offsets of each section's (tag, payload_start, payload_len)
/// walked from the file image itself.
fn section_offsets(bytes: &[u8]) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    let mut pos = 16; // header: magic(8) + version(4) + crc(4)
    while pos + 4 <= bytes.len() {
        let tag = String::from_utf8_lossy(&bytes[pos..pos + 4]).into_owned();
        if tag == "TRLR" {
            out.push((tag, pos + 4, 4));
            break;
        }
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
        out.push((tag, pos + 12, len));
        pos += 12 + len + 4;
    }
    out
}

/// Rewrites every checksum (header, each section, trailer) so a mutated
/// payload passes the structural tier and reaches semantic validation.
/// Defensive against mutations in the framing itself (e.g. a flipped
/// length field): when the walk runs off the image it stops and leaves
/// the rest as-is — the loader's structural tier handles those.
fn fix_crcs(bytes: &mut [u8]) {
    if bytes.len() < 16 {
        return;
    }
    let header = crc32(&bytes[..12]);
    bytes[12..16].copy_from_slice(&header.to_le_bytes());
    let mut pos = 16usize;
    while pos + 12 <= bytes.len() {
        if &bytes[pos..pos + 4] == b"TRLR" {
            let file = crc32(&bytes[..pos]);
            bytes[pos + 4..pos + 8].copy_from_slice(&file.to_le_bytes());
            break;
        }
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
        let Some(crc_start) = pos.checked_add(12).and_then(|p| p.checked_add(len)) else {
            break;
        };
        if crc_start + 4 > bytes.len() {
            break;
        }
        let payload_crc = crc32(&bytes[pos + 12..crc_start]);
        bytes[crc_start..crc_start + 4].copy_from_slice(&payload_crc.to_le_bytes());
        pos = crc_start + 4;
    }
}

#[test]
fn every_single_bit_flip_is_a_typed_error() {
    let (dir, bytes) = snapshot_bytes("bitflip");
    let mut mutated = bytes.clone();
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            mutated[byte] ^= 1 << bit;
            let result = load_bytes(&dir, &mutated);
            assert!(
                result.is_err(),
                "flip of byte {byte} bit {bit} must not load (CRC32 catches all 1-bit errors)"
            );
            mutated[byte] ^= 1 << bit;
        }
    }
    assert_eq!(mutated, bytes, "fuzz restored the image");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_truncation_length_is_a_typed_error() {
    let (dir, bytes) = snapshot_bytes("truncate");
    for len in 0..bytes.len() {
        let err = load_bytes(&dir, &bytes[..len]).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::Truncated { .. }
                    | SnapshotError::ChecksumMismatch { .. }
                    | SnapshotError::BadMagic
            ),
            "prefix of {len} bytes: unexpected {err}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn semantic_tier_survives_crc_fixed_payload_flips_without_panicking() {
    let (dir, bytes) = snapshot_bytes("semantic");
    // Flip bits across the whole image with CRCs re-fixed: the flip may
    // produce a different-but-valid snapshot (Ok) or an inconsistent one
    // (typed Err) — the assertion is that *neither path panics* and an
    // Ok result is a genuinely coherent corpus.
    let mut mutated = bytes.clone();
    for byte in (0..bytes.len()).step_by(3) {
        for bit in [0, 4, 7] {
            mutated[byte] ^= 1 << bit;
            fix_crcs(&mut mutated);
            let _ = load_bytes(&dir, &mutated);
            mutated.copy_from_slice(&bytes);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn each_section_boundary_yields_its_precise_error() {
    let (dir, bytes) = snapshot_bytes("targeted");
    let sections = section_offsets(&bytes);
    let by_tag = |tag: &str| {
        sections
            .iter()
            .find(|(t, _, _)| t == tag)
            .unwrap_or_else(|| panic!("section {tag} present"))
            .clone()
    };

    // Header: a flipped magic byte is "not a snapshot".
    let mut m = bytes.clone();
    m[0] ^= 0xFF;
    assert!(matches!(
        load_bytes(&dir, &m).unwrap_err(),
        SnapshotError::BadMagic
    ));

    // A future version (with a *valid* header CRC) is refused as such.
    let mut m = bytes.clone();
    m[8..12].copy_from_slice(&2u32.to_le_bytes());
    let crc = crc32(&m[..12]);
    m[12..16].copy_from_slice(&crc.to_le_bytes());
    assert!(matches!(
        load_bytes(&dir, &m).unwrap_err(),
        SnapshotError::UnsupportedVersion { found: 2 }
    ));

    // A flipped version byte *without* fixing the CRC is caught by the
    // header checksum instead.
    let mut m = bytes.clone();
    m[8] ^= 1;
    assert!(matches!(
        load_bytes(&dir, &m).unwrap_err(),
        SnapshotError::ChecksumMismatch { section: "header" }
    ));

    // Per-section payload flips → that section's checksum error.
    for (tag, section_name) in [
        ("META", "meta"),
        ("DICT", "dict"),
        ("DOCS", "docs"),
        ("POST", "post"),
        ("BITS", "bits"),
    ] {
        let (_, payload_start, payload_len) = by_tag(tag);
        assert!(payload_len > 0, "{tag} payload is non-trivial");
        let mut m = bytes.clone();
        m[payload_start + payload_len / 2] ^= 0x10;
        let err = load_bytes(&dir, &m).unwrap_err();
        match err {
            SnapshotError::ChecksumMismatch { section } => {
                assert_eq!(section, section_name, "flip inside {tag}")
            }
            other => panic!("flip inside {tag}: expected checksum error, got {other}"),
        }
    }

    // A renamed section tag → UnexpectedSection carrying the found bytes.
    let (_, dict_payload_start, _) = by_tag("DICT");
    let tag_pos = dict_payload_start - 12;
    let mut m = bytes.clone();
    m[tag_pos..tag_pos + 4].copy_from_slice(b"JUNK");
    match load_bytes(&dir, &m).unwrap_err() {
        SnapshotError::UnexpectedSection { expected, found } => {
            assert_eq!(expected, "dict");
            assert_eq!(&found, b"JUNK");
        }
        other => panic!("expected UnexpectedSection, got {other}"),
    }

    // A corrupted section length → truncation or checksum, never a panic.
    let mut m = bytes.clone();
    m[tag_pos + 4..tag_pos + 12].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(matches!(
        load_bytes(&dir, &m).unwrap_err(),
        SnapshotError::Truncated { .. }
    ));

    // Trailer CRC flip → trailer checksum mismatch.
    let (_, trailer_crc_start, _) = by_tag("TRLR");
    let mut m = bytes.clone();
    m[trailer_crc_start] ^= 1;
    assert!(matches!(
        load_bytes(&dir, &m).unwrap_err(),
        SnapshotError::ChecksumMismatch { section: "trailer" }
    ));

    // Garbage after the trailer → TrailingBytes with the exact count.
    let mut m = bytes.clone();
    m.extend_from_slice(b"xyz");
    assert!(matches!(
        load_bytes(&dir, &m).unwrap_err(),
        SnapshotError::TrailingBytes { extra: 3 }
    ));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crc_valid_but_inconsistent_payloads_fail_semantic_validation() {
    let (dir, bytes) = snapshot_bytes("inconsistent");
    let sections = section_offsets(&bytes);
    let (_, meta_start, _) = sections
        .iter()
        .find(|(t, _, _)| t == "META")
        .unwrap()
        .clone();

    // Claim one more document than the sections describe (CRCs fixed):
    // the cross-section consistency pass must reject it.
    let mut m = bytes.clone();
    let num_docs = u64::from_le_bytes(m[meta_start..meta_start + 8].try_into().unwrap());
    m[meta_start..meta_start + 8].copy_from_slice(&(num_docs + 1).to_le_bytes());
    fix_crcs(&mut m);
    let err = load_bytes(&dir, &m).unwrap_err();
    assert!(
        matches!(
            err,
            SnapshotError::Corrupt { .. } | SnapshotError::Truncated { .. }
        ),
        "inflated num_docs: {err}"
    );

    // Claim a wrong total posting count: typed Corrupt naming `post`.
    let mut m = bytes.clone();
    let tp_start = meta_start + 24;
    let total = u64::from_le_bytes(m[tp_start..tp_start + 8].try_into().unwrap());
    m[tp_start..tp_start + 8].copy_from_slice(&(total + 1).to_le_bytes());
    fix_crcs(&mut m);
    match load_bytes(&dir, &m).unwrap_err() {
        SnapshotError::Corrupt { section, detail } => {
            assert_eq!(section, "post");
            assert!(detail.contains("disagrees"), "{detail}");
        }
        other => panic!("expected Corrupt, got {other}"),
    }

    std::fs::remove_dir_all(&dir).ok();
}
