//! Round-trip equality: a corpus saved and loaded back must be
//! indistinguishable from the original — same dictionary, same stored
//! documents, same term rows, same posting statistics, same hybrid
//! representations — across text, structured, labeled, empty, and
//! stopword-only shapes.

use std::path::PathBuf;

use qec_index::{Corpus, CorpusBuilder, DocumentSpec, Feature, PostingsView};
use qec_snapshot::{load_corpus, load_corpus_with_summary, save_corpus, SnapshotError};
use qec_text::TermId;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qec-snap-rt-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A corpus exercising every serialized shape: plain text, repeated
/// terms (tf > 1), structured features, labels, a stopword-only document
/// (zero terms, zero length), and enough repetition of a common term to
/// freeze it dense (`df · 64 >= num_docs` holds trivially at this size).
fn mixed_corpus() -> Corpus {
    let mut b = CorpusBuilder::new();
    for i in 0..40 {
        b.add_document(DocumentSpec::text(
            format!("Title {i}"),
            format!("apple common{} java java island word{}", i % 3, i % 7),
        ));
    }
    b.add_document(DocumentSpec::text("", "the of and"));
    b.add_document(
        DocumentSpec::structured(
            "Canon PowerShot",
            vec![
                Feature::new("camera", "brand", "Canon"),
                Feature::new("camera", "category", "cameras"),
            ],
        )
        .with_label(7),
    );
    b.build()
}

/// Field-for-field corpus equality, through public accessors.
fn assert_corpora_equal(a: &Corpus, b: &Corpus) {
    assert_eq!(a.num_docs(), b.num_docs());
    assert_eq!(a.vocab_size(), b.vocab_size());
    assert_eq!(a.analyzer().config(), b.analyzer().config());
    for t in 0..a.vocab_size() as u32 {
        assert_eq!(a.term_name(TermId(t)), b.term_name(TermId(t)), "term {t}");
    }
    for d in a.all_docs() {
        assert_eq!(a.doc(d), b.doc(d), "stored doc {d}");
        assert_eq!(a.doc_terms(d), b.doc_terms(d), "term row of {d}");
    }
    let (ia, ib) = (a.index(), b.index());
    assert_eq!(ia.num_docs(), ib.num_docs());
    assert_eq!(ia.num_terms(), ib.num_terms());
    assert_eq!(ia.total_postings(), ib.total_postings());
    for t in 0..ia.num_terms() as u32 {
        let term = TermId(t);
        assert_eq!(ia.postings(term), ib.postings(term), "postings of {t}");
        // The hybrid side: identical representation *and* contents.
        match (ia.doc_ids(term), ib.doc_ids(term)) {
            (PostingsView::Sorted(x), PostingsView::Sorted(y)) => assert_eq!(x, y),
            (PostingsView::Bitmap(x), PostingsView::Bitmap(y)) => {
                assert_eq!(x.as_bitset(), y.as_bitset(), "bitmap of {t}")
            }
            _ => panic!("representation of term {t} changed across the round-trip"),
        }
    }
}

#[test]
fn mixed_corpus_roundtrips_bit_identically() {
    let dir = temp_dir("mixed");
    let path = dir.join("index.qsnap");
    let corpus = mixed_corpus();

    let saved = save_corpus(&corpus, &path).expect("save");
    assert_eq!(saved.num_docs, corpus.num_docs() as u64);
    assert_eq!(saved.vocab, corpus.vocab_size() as u64);
    assert_eq!(saved.total_postings, corpus.index().total_postings());
    assert!(saved.dense_terms >= 1, "the corpus has dense terms");
    assert_eq!(
        saved.bytes,
        std::fs::metadata(&path).unwrap().len(),
        "summary byte count is the file size"
    );

    let (loaded, summary) = load_corpus_with_summary(&path).expect("load");
    assert_eq!(summary, saved, "save and load report the same summary");
    assert_corpora_equal(&corpus, &loaded);

    // The loaded corpus serves query analysis identically.
    assert_eq!(loaded.keyword_term("apples"), corpus.keyword_term("apples"));
    assert_eq!(loaded.keyword_term("the"), None);
    assert_eq!(
        loaded.query_terms("java island"),
        corpus.query_terms("java island")
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_corpus_roundtrips() {
    let dir = temp_dir("empty");
    let path = dir.join("empty.qsnap");
    let corpus = CorpusBuilder::new().build();
    save_corpus(&corpus, &path).expect("save empty");
    let loaded = load_corpus(&path).expect("load empty");
    assert_eq!(loaded.num_docs(), 0);
    assert_eq!(loaded.vocab_size(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn saving_over_an_existing_snapshot_replaces_it_atomically() {
    let dir = temp_dir("replace");
    let path = dir.join("index.qsnap");

    let mut b = CorpusBuilder::new();
    b.add_document(DocumentSpec::text("one", "first generation"));
    save_corpus(&b.build(), &path).expect("first save");

    let second = mixed_corpus();
    save_corpus(&second, &path).expect("second save");
    let loaded = load_corpus(&path).expect("load replaced");
    assert_corpora_equal(&second, &loaded);

    // No temp debris left behind.
    let stray: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
        .collect();
    assert!(stray.is_empty(), "temp files cleaned up: {stray:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn loading_a_missing_file_is_a_typed_io_error() {
    let err = load_corpus(std::path::Path::new("/nonexistent/qec/snapshot.qsnap")).unwrap_err();
    assert!(matches!(err, SnapshotError::Io(_)), "{err}");
    assert!(err.to_string().contains("io error"), "{err}");
}

#[test]
fn no_stem_no_stopword_config_survives_the_roundtrip() {
    use qec_text::AnalyzerConfig;
    let dir = temp_dir("config");
    let path = dir.join("cfg.qsnap");
    let mut b = CorpusBuilder::with_analyzer_config(AnalyzerConfig {
        stem: false,
        filter_stopwords: false,
    });
    b.add_document(DocumentSpec::text("t", "The Running Shoes"));
    let corpus = b.build();
    save_corpus(&corpus, &path).unwrap();
    let loaded = load_corpus(&path).unwrap();
    assert_corpora_equal(&corpus, &loaded);
    // Stopwords were indexed (config says keep them) and must still be.
    assert!(loaded.keyword_term("the").is_some());
    assert_eq!(
        loaded.keyword_term("running"),
        corpus.keyword_term("running")
    );
    std::fs::remove_dir_all(&dir).ok();
}
