//! Encoding and the crash-safe write protocol.
//!
//! A save never touches the destination path until the complete new
//! snapshot is durable: the encoded bytes go to a sibling temp file,
//! `File::sync_all` forces them to disk, an atomic `rename` publishes
//! them, and a final fsync of the parent directory makes the rename
//! itself durable. A crash (or injected fault) at any point leaves the
//! previous snapshot generation untouched — at worst an orphaned
//! `*.tmp` file remains, which the next successful save of the same
//! process overwrites.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

use qec_index::{Corpus, PostingsView};
use qec_text::TermId;

use crate::crc::crc32;
use crate::error::SnapshotError;
use crate::format::{
    put_str, MAGIC, TAG_BITS, TAG_DICT, TAG_DOCS, TAG_META, TAG_POST, TAG_TRLR, VERSION,
};
use crate::{failpoint, SnapshotSummary};

fn put_section(buf: &mut Vec<u8>, tag: [u8; 4], payload: &[u8]) {
    buf.extend_from_slice(&tag);
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// Encodes `corpus` into the full snapshot byte image.
fn encode(corpus: &Corpus) -> (Vec<u8>, SnapshotSummary) {
    let analyzer = corpus.analyzer();
    let index = corpus.index();
    let num_docs = corpus.num_docs() as u64;
    let vocab = analyzer.vocab_size() as u64;
    let index_terms = index.num_terms() as u64;

    // META — corpus-wide counts + the analyzer configuration, so a load
    // reconstructs the identical pipeline before interning a single term.
    let config = analyzer.config();
    let mut meta = Vec::with_capacity(34);
    meta.extend_from_slice(&num_docs.to_le_bytes());
    meta.extend_from_slice(&vocab.to_le_bytes());
    meta.extend_from_slice(&index_terms.to_le_bytes());
    meta.extend_from_slice(&index.total_postings().to_le_bytes());
    meta.push(u8::from(config.stem));
    meta.push(u8::from(config.filter_stopwords));

    // DICT — term names in dense-id order; re-interning them in order
    // reproduces the exact id assignment.
    let mut dict = Vec::new();
    for (_, name) in analyzer.dict().iter() {
        put_str(&mut dict, name);
    }
    let dict_crc = crc32(&dict);

    // DOCS — stored metadata only. The per-document term rows are *not*
    // persisted: they are the exact transpose of the posting lists, and
    // the loader rebuilds them from POST — one source of truth on disk
    // means the two can never disagree.
    let mut docs = Vec::new();
    for d in corpus.all_docs() {
        let stored = corpus.doc(d);
        put_str(&mut docs, &stored.title);
        match stored.label {
            Some(label) => {
                docs.push(1);
                docs.extend_from_slice(&label.to_le_bytes());
            }
            None => docs.push(0),
        }
        docs.extend_from_slice(&stored.len.to_le_bytes());
        docs.extend_from_slice(&(stored.features.len() as u32).to_le_bytes());
        for feature in &stored.features {
            put_str(&mut docs, &feature.entity);
            put_str(&mut docs, &feature.attribute);
            put_str(&mut docs, &feature.value);
        }
    }

    // POST — every term's posting list. Which terms are dense is *not*
    // stored either: the loader re-derives it from the same density rule
    // the index froze with, so a flipped flag can't smuggle in a wrong
    // representation.
    let mut post = Vec::with_capacity(index.total_postings() as usize * 8 + 4);
    let mut dense_terms = 0u64;
    for slot in 0..index_terms {
        let term = TermId(slot as u32);
        let list = index.postings(term);
        post.extend_from_slice(&(list.len() as u32).to_le_bytes());
        for p in list {
            post.extend_from_slice(&p.doc.0.to_le_bytes());
            post.extend_from_slice(&p.tf.to_le_bytes());
        }
        if matches!(index.doc_ids(term), PostingsView::Bitmap(_)) {
            dense_terms += 1;
        }
    }

    // BITS — the dense terms' bitmaps as raw word slices
    // (`Bitset::as_words`), in ascending term order.
    let mut bits = Vec::new();
    bits.extend_from_slice(&dense_terms.to_le_bytes());
    for slot in 0..index_terms {
        let term = TermId(slot as u32);
        if let PostingsView::Bitmap(b) = index.doc_ids(term) {
            let words = b.as_bitset().as_words();
            bits.extend_from_slice(&(term.0).to_le_bytes());
            bits.extend_from_slice(&(words.len() as u64).to_le_bytes());
            for w in words {
                bits.extend_from_slice(&w.to_le_bytes());
            }
        }
    }

    let mut buf = Vec::with_capacity(
        16 + meta.len() + dict.len() + docs.len() + post.len() + bits.len() + 5 * 16 + 8,
    );
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    let header_crc = crc32(&buf);
    buf.extend_from_slice(&header_crc.to_le_bytes());
    put_section(&mut buf, TAG_META, &meta);
    put_section(&mut buf, TAG_DICT, &dict);
    put_section(&mut buf, TAG_DOCS, &docs);
    put_section(&mut buf, TAG_POST, &post);
    put_section(&mut buf, TAG_BITS, &bits);
    let file_crc = crc32(&buf);
    buf.extend_from_slice(&TAG_TRLR);
    buf.extend_from_slice(&file_crc.to_le_bytes());

    let summary = SnapshotSummary {
        bytes: buf.len() as u64,
        num_docs,
        vocab,
        index_terms,
        total_postings: index.total_postings(),
        dense_terms,
        dict_crc,
    };
    (buf, summary)
}

fn temp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "snapshot".into());
    name.push(format!(".{}.tmp", std::process::id()));
    path.with_file_name(name)
}

/// Writes `corpus` to `path` crash-safely: encode → sibling temp file →
/// fsync → atomic rename → fsync parent directory. On any failure the
/// previous snapshot at `path` is left exactly as it was.
///
/// Failpoint sites (chaos tests): `snapshot.write` before the bytes hit
/// the temp file, `snapshot.fsync` before they are forced to disk.
pub fn save_corpus(corpus: &Corpus, path: &Path) -> Result<SnapshotSummary, SnapshotError> {
    let (buf, summary) = encode(corpus);
    let tmp = temp_path(path);
    let write_result = (|| -> std::io::Result<()> {
        let mut file = File::create(&tmp)?;
        failpoint("snapshot.write")?;
        file.write_all(&buf)?;
        failpoint("snapshot.fsync")?;
        file.sync_all()
    })();
    if let Err(e) = write_result {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    // The rename is only durable once the directory entry is: fsync the
    // parent. (An error here is reported even though the file is already
    // in place — callers treat the save as not-durable and may retry.)
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    File::open(parent).and_then(|d| d.sync_all())?;
    Ok(summary)
}
