//! CRC32 (IEEE 802.3, reflected polynomial) — the workspace is offline,
//! so the usual `crc32fast` dependency is replaced by this in-crate
//! slicing-by-8 implementation. Snapshot files checksum hundreds of
//! megabytes on both the write and the load path, so the byte-at-a-time
//! textbook loop would show up in the load-vs-rebuild speedup this crate
//! exists to deliver; slicing-by-8 processes eight input bytes per table
//! round and runs at multiple GB/s on current hardware.

const POLY: u32 = 0xEDB8_8320;

const fn make_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

static TABLES: [[u32; 256]; 8] = make_tables();

/// Streaming CRC32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, mut data: &[u8]) {
        let mut crc = self.state;
        while data.len() >= 8 {
            let low = crc ^ u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
            crc = TABLES[7][(low & 0xFF) as usize]
                ^ TABLES[6][((low >> 8) & 0xFF) as usize]
                ^ TABLES[5][((low >> 16) & 0xFF) as usize]
                ^ TABLES[4][(low >> 24) as usize]
                ^ TABLES[3][data[4] as usize]
                ^ TABLES[2][data[5] as usize]
                ^ TABLES[1][data[6] as usize]
                ^ TABLES[0][data[7] as usize];
            data = &data[8..];
        }
        for &byte in data {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(byte)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The final checksum value.
    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sliced_path_matches_byte_path_at_every_alignment() {
        // Reference: pure byte-at-a-time loop over table 0.
        fn reference(data: &[u8]) -> u32 {
            let mut crc = 0xFFFF_FFFFu32;
            for &b in data {
                crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
            }
            crc ^ 0xFFFF_FFFF
        }
        let data: Vec<u8> = (0..1024u32)
            .map(|i| (i.wrapping_mul(31) >> 3) as u8)
            .collect();
        for start in 0..16 {
            for len in [0, 1, 7, 8, 9, 63, 64, 65, 500] {
                let slice = &data[start..start + len];
                assert_eq!(crc32(slice), reference(slice), "start {start}, len {len}");
            }
        }
    }

    #[test]
    fn streaming_split_updates_match_one_shot() {
        let data: Vec<u8> = (0..777u32).map(|i| (i * 7 + 13) as u8).collect();
        let whole = crc32(&data);
        for split in [0, 1, 8, 100, 776, 777] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finalize(), whole, "split at {split}");
        }
    }

    #[test]
    fn single_bit_flips_always_change_the_checksum() {
        let data: Vec<u8> = (0..256u32).map(|i| i as u8).collect();
        let clean = crc32(&data);
        let mut corrupt = data.clone();
        for byte in 0..data.len() {
            for bit in 0..8 {
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), clean, "byte {byte} bit {bit}");
                corrupt[byte] ^= 1 << bit;
            }
        }
    }
}
