//! The strict validation load path.
//!
//! Loading is a two-tier defense. Tier one is *structural*: magic,
//! version, section order, section lengths, per-section CRC32, and the
//! whole-file trailer CRC — any bit flip or truncation anywhere in the
//! file fails here with a typed [`SnapshotError`], never a panic. Tier
//! two is *semantic*: even bytes with valid checksums must describe an
//! index a fresh build could have produced — dense dictionary ids,
//! strictly sorted in-range posting lists, bitmap universes and
//! populations matching their lists, the density representation rule,
//! and per-document length sums. The reconstruction constructors in
//! `qec-index` / `qec-bitset` enforce most of tier two; their typed
//! rejections surface as [`SnapshotError::Corrupt`] naming the section.
//!
//! The per-document term rows are not read from disk at all: they are
//! rebuilt as the transpose of the posting lists, so the two views of
//! the corpus cannot disagree by construction.

use std::path::Path;

use qec_bitset::Bitset;
use qec_index::{
    Corpus, DocBitmap, DocId, Feature, FrozenPostings, InvertedIndex, Posting, StoredDoc,
};
use qec_text::{Analyzer, AnalyzerConfig, TermId};

use crate::crc::crc32;
use crate::error::SnapshotError;
use crate::format::{
    Reader, MAGIC, TAG_BITS, TAG_DICT, TAG_DOCS, TAG_META, TAG_POST, TAG_TRLR, VERSION,
};
use crate::{failpoint, SnapshotSummary};

fn load_failpoint(site: &'static str) -> Result<(), SnapshotError> {
    failpoint(site).map_err(SnapshotError::Io)
}

/// Reads one framed section: tag must match, payload must verify against
/// its stored CRC. Returns the payload and its CRC.
fn section<'a>(
    r: &mut Reader<'a>,
    tag: [u8; 4],
    name: &'static str,
) -> Result<(&'a [u8], u32), SnapshotError> {
    r.set_context(name);
    let found = r.bytes(4)?;
    if found != tag {
        return Err(SnapshotError::UnexpectedSection {
            expected: name,
            found: [found[0], found[1], found[2], found[3]],
        });
    }
    let len = r.u64()?;
    let payload = r.bytes(len as usize)?;
    let stored = r.u32()?;
    if crc32(payload) != stored {
        return Err(SnapshotError::ChecksumMismatch { section: name });
    }
    Ok((payload, stored))
}

fn corrupt(section: &'static str, detail: impl std::fmt::Display) -> SnapshotError {
    SnapshotError::Corrupt {
        section,
        detail: detail.to_string(),
    }
}

/// Pre-allocation guard for untrusted counts: a corrupted (but
/// CRC-consistent) count field must not drive `Vec::with_capacity` into
/// an abort. Capacity is capped at what the remaining payload could
/// possibly encode (`min_bytes_each` per element); the element loop
/// itself then fails with a typed `Truncated` long before memory does.
fn capped(count: usize, min_bytes_each: usize, remaining: usize) -> usize {
    count.min(remaining / min_bytes_each.max(1))
}

/// Checks a section's payload reader consumed every byte.
fn drained(r: &Reader<'_>, name: &'static str) -> Result<(), SnapshotError> {
    if r.remaining() != 0 {
        return Err(corrupt(
            name,
            format!("{} unconsumed payload bytes", r.remaining()),
        ));
    }
    Ok(())
}

struct Meta {
    num_docs: u64,
    vocab: u64,
    index_terms: u64,
    total_postings: u64,
    config: AnalyzerConfig,
}

fn parse_meta(payload: &[u8]) -> Result<Meta, SnapshotError> {
    let mut r = Reader::new(payload);
    r.set_context("meta");
    let num_docs = r.u64()?;
    let vocab = r.u64()?;
    let index_terms = r.u64()?;
    let total_postings = r.u64()?;
    let stem = r.u8()?;
    let filter_stopwords = r.u8()?;
    drained(&r, "meta")?;
    if num_docs > u64::from(u32::MAX) {
        return Err(corrupt(
            "meta",
            format!("{num_docs} documents overflow u32"),
        ));
    }
    if index_terms > vocab {
        return Err(corrupt(
            "meta",
            format!("{index_terms} index terms exceed vocabulary of {vocab}"),
        ));
    }
    if stem > 1 || filter_stopwords > 1 {
        return Err(corrupt("meta", "analyzer flags must be 0 or 1"));
    }
    Ok(Meta {
        num_docs,
        vocab,
        index_terms,
        total_postings,
        config: AnalyzerConfig {
            stem: stem == 1,
            filter_stopwords: filter_stopwords == 1,
        },
    })
}

fn parse_dict(payload: &[u8], meta: &Meta) -> Result<Analyzer, SnapshotError> {
    let mut r = Reader::new(payload);
    r.set_context("dict");
    let mut analyzer = Analyzer::with_config(meta.config.clone());
    for expected in 0..meta.vocab {
        let name = r.string("dict")?;
        let id = analyzer.intern_verbatim(&name);
        if u64::from(id.0) != expected {
            return Err(corrupt(
                "dict",
                format!("term `{name}` is a duplicate (slot {expected})"),
            ));
        }
    }
    drained(&r, "dict")?;
    Ok(analyzer)
}

fn parse_docs(payload: &[u8], meta: &Meta) -> Result<Vec<StoredDoc>, SnapshotError> {
    let mut r = Reader::new(payload);
    r.set_context("docs");
    // Each stored doc needs at least 13 bytes (title len + label flag +
    // doc len + feature count).
    let mut docs = Vec::with_capacity(capped(meta.num_docs as usize, 13, r.remaining()));
    for _ in 0..meta.num_docs {
        let title = r.string("docs")?;
        let label = match r.u8()? {
            0 => None,
            1 => Some(r.u32()?),
            flag => return Err(corrupt("docs", format!("label flag {flag} must be 0 or 1"))),
        };
        let len = r.u32()?;
        let feature_count = r.u32()?;
        // A feature is at least three empty length-prefixed strings.
        let mut features = Vec::with_capacity(capped(feature_count as usize, 12, r.remaining()));
        for _ in 0..feature_count {
            let entity = r.string("docs")?;
            let attribute = r.string("docs")?;
            let value = r.string("docs")?;
            features.push(Feature {
                entity,
                attribute,
                value,
            });
        }
        docs.push(StoredDoc {
            title,
            features,
            label,
            len,
        });
    }
    drained(&r, "docs")?;
    Ok(docs)
}

struct ParsedPostings {
    lists: Vec<Vec<Posting>>,
    /// `Some` for sparse terms; `None` marks a dense slot awaiting its
    /// bitmap from the BITS section.
    frozen: Vec<Option<FrozenPostings>>,
    /// Dense term slots in ascending order — the exact sequence BITS
    /// must supply.
    dense: Vec<u32>,
}

fn parse_post(payload: &[u8], meta: &Meta) -> Result<ParsedPostings, SnapshotError> {
    let mut r = Reader::new(payload);
    r.set_context("post");
    let n = meta.num_docs as usize;
    let term_cap = capped(meta.index_terms as usize, 4, r.remaining());
    let mut lists = Vec::with_capacity(term_cap);
    let mut frozen = Vec::with_capacity(term_cap);
    let mut dense = Vec::new();
    let mut total = 0u64;
    for slot in 0..meta.index_terms as u32 {
        let df = r.u32()? as usize;
        let mut list = Vec::with_capacity(capped(df, 8, r.remaining()));
        let mut prev: Option<u32> = None;
        for _ in 0..df {
            let doc = r.u32()?;
            let tf = r.u32()?;
            if doc as usize >= n {
                return Err(corrupt(
                    "post",
                    format!("term {slot} references doc {doc} beyond {n} documents"),
                ));
            }
            if prev.is_some_and(|p| p >= doc) {
                return Err(corrupt(
                    "post",
                    format!("posting list of term {slot} is not strictly sorted"),
                ));
            }
            if tf == 0 {
                return Err(corrupt(
                    "post",
                    format!("zero term frequency for term {slot} in doc {doc}"),
                ));
            }
            prev = Some(doc);
            list.push(Posting {
                doc: DocId(doc),
                tf,
            });
        }
        total += df as u64;
        if df * 64 >= n && n > 0 {
            dense.push(slot);
            frozen.push(None);
        } else {
            frozen.push(Some(FrozenPostings::Sorted(
                list.iter().map(|p| p.doc).collect(),
            )));
        }
        lists.push(list);
    }
    drained(&r, "post")?;
    if total != meta.total_postings {
        return Err(corrupt(
            "post",
            format!(
                "posting count {total} disagrees with meta's {}",
                meta.total_postings
            ),
        ));
    }
    Ok(ParsedPostings {
        lists,
        frozen,
        dense,
    })
}

fn parse_bits(
    payload: &[u8],
    meta: &Meta,
    parsed: &mut ParsedPostings,
) -> Result<(), SnapshotError> {
    let mut r = Reader::new(payload);
    r.set_context("bits");
    let n = meta.num_docs as usize;
    let count = r.u64()?;
    if count != parsed.dense.len() as u64 {
        return Err(corrupt(
            "bits",
            format!(
                "{count} bitmaps stored but the density rule marks {} terms dense",
                parsed.dense.len()
            ),
        ));
    }
    for &slot in &parsed.dense {
        let term = r.u32()?;
        if term != slot {
            return Err(corrupt(
                "bits",
                format!("bitmap for term {term} where term {slot} was expected"),
            ));
        }
        let word_count = r.u64()? as usize;
        let raw = r.bytes(
            word_count
                .checked_mul(8)
                .ok_or(SnapshotError::Truncated { context: "bits" })?,
        )?;
        let words: Vec<u64> = raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect();
        let bitset = Bitset::from_words(n, words)
            .map_err(|e| corrupt("bits", format!("bitmap of term {term}: {e}")))?;
        parsed.frozen[slot as usize] = Some(FrozenPostings::Bitmap(DocBitmap::from_bitset(bitset)));
    }
    drained(&r, "bits")?;
    Ok(())
}

/// Rebuilds the per-document term rows as the transpose of the posting
/// lists. Outer loop ascends by term, so each row comes out sorted by
/// term id — the corpus invariant — without a sort.
fn transpose(lists: &[Vec<Posting>], num_docs: usize) -> Vec<Vec<(TermId, u32)>> {
    let mut row_lens = vec![0usize; num_docs];
    for list in lists {
        for p in list {
            row_lens[p.doc.index()] += 1;
        }
    }
    let mut rows: Vec<Vec<(TermId, u32)>> = row_lens.into_iter().map(Vec::with_capacity).collect();
    for (slot, list) in lists.iter().enumerate() {
        let term = TermId(slot as u32);
        for p in list {
            rows[p.doc.index()].push((term, p.tf));
        }
    }
    rows
}

/// Loads and validates the snapshot at `path`. See
/// [`load_corpus_with_summary`] for the summary-returning variant.
pub fn load_corpus(path: &Path) -> Result<Corpus, SnapshotError> {
    load_corpus_with_summary(path).map(|(corpus, _)| corpus)
}

/// Loads and validates the snapshot at `path`, returning the corpus and
/// a [`SnapshotSummary`] (byte size, counts, dictionary fingerprint —
/// what sharded loads use to verify that a set of files belongs to one
/// generation).
///
/// Failpoint sites (chaos tests): `snapshot.load.header`,
/// `snapshot.load.meta`, `.dict`, `.docs`, `.post`, `.bits`,
/// `.trailer` — each fires before its section is touched.
pub fn load_corpus_with_summary(path: &Path) -> Result<(Corpus, SnapshotSummary), SnapshotError> {
    load_failpoint("snapshot.load.header")?;
    let buf = std::fs::read(path)?;
    let mut r = Reader::new(&buf);

    // Header: magic, version, header CRC.
    let magic = r.bytes(8)?;
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32()?;
    let header_crc = r.u32()?;
    if crc32(&buf[..12]) != header_crc {
        return Err(SnapshotError::ChecksumMismatch { section: "header" });
    }
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }

    load_failpoint("snapshot.load.meta")?;
    let (meta_payload, _) = section(&mut r, TAG_META, "meta")?;
    let meta = parse_meta(meta_payload)?;

    load_failpoint("snapshot.load.dict")?;
    let (dict_payload, dict_crc) = section(&mut r, TAG_DICT, "dict")?;
    let analyzer = parse_dict(dict_payload, &meta)?;

    load_failpoint("snapshot.load.docs")?;
    let (docs_payload, _) = section(&mut r, TAG_DOCS, "docs")?;
    let docs = parse_docs(docs_payload, &meta)?;

    load_failpoint("snapshot.load.post")?;
    let (post_payload, _) = section(&mut r, TAG_POST, "post")?;
    let mut parsed = parse_post(post_payload, &meta)?;

    load_failpoint("snapshot.load.bits")?;
    let (bits_payload, _) = section(&mut r, TAG_BITS, "bits")?;
    parse_bits(bits_payload, &meta, &mut parsed)?;

    // Trailer: whole-file CRC over everything before the trailer tag,
    // then exact EOF.
    load_failpoint("snapshot.load.trailer")?;
    r.set_context("trailer");
    let body_end = r.pos();
    let tag = r.bytes(4)?;
    if tag != TAG_TRLR {
        return Err(SnapshotError::UnexpectedSection {
            expected: "trailer",
            found: [tag[0], tag[1], tag[2], tag[3]],
        });
    }
    let file_crc = r.u32()?;
    if crc32(&buf[..body_end]) != file_crc {
        return Err(SnapshotError::ChecksumMismatch { section: "trailer" });
    }
    if r.remaining() != 0 {
        return Err(SnapshotError::TrailingBytes {
            extra: r.remaining(),
        });
    }

    // Assembly through the validating reconstruction constructors.
    let rows = transpose(&parsed.lists, meta.num_docs as usize);
    let frozen: Vec<FrozenPostings> = parsed
        .frozen
        .into_iter()
        .map(|f| f.expect("every dense slot was filled by parse_bits"))
        .collect();
    let dense_terms = parsed.dense.len() as u64;
    let index = InvertedIndex::from_frozen_parts(meta.num_docs as u32, parsed.lists, frozen)
        .map_err(|e| corrupt("post", e))?;
    let corpus =
        Corpus::from_frozen_parts(analyzer, docs, rows, index).map_err(|e| corrupt("docs", e))?;

    let summary = SnapshotSummary {
        bytes: buf.len() as u64,
        num_docs: meta.num_docs,
        vocab: meta.vocab,
        index_terms: meta.index_terms,
        total_postings: meta.total_postings,
        dense_terms,
        dict_crc,
    };
    Ok((corpus, summary))
}
