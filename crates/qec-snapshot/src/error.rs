//! The typed failure vocabulary of the load path.
//!
//! Loading **never panics**: every way a snapshot file can be wrong —
//! unreadable, foreign, from a future version, cut short, bit-flipped, or
//! internally inconsistent despite valid checksums — maps to a
//! [`SnapshotError`] variant precise enough for an operator to act on and
//! for the engine to count before falling back to an in-memory rebuild.

/// Why a snapshot could not be saved or loaded.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying filesystem operation failed (open, read, write,
    /// fsync, rename — or an injected IO fault in chaos tests).
    Io(std::io::Error),
    /// The file does not start with the snapshot magic — not a snapshot.
    BadMagic,
    /// The file is a snapshot, but of a format version this build does
    /// not understand.
    UnsupportedVersion {
        /// Version number found in the header.
        found: u32,
    },
    /// The file ends before the structure it promises — the signature of
    /// a torn write or a truncated copy.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// A section's payload does not match its stored CRC32 — bit rot,
    /// a torn write inside the section, or deliberate tampering.
    ChecksumMismatch {
        /// The section whose checksum failed (`"header"`, `"meta"`,
        /// `"dict"`, `"docs"`, `"post"`, `"bits"`, `"trailer"`).
        section: &'static str,
    },
    /// A section tag is not the one the fixed layout requires here.
    UnexpectedSection {
        /// Tag the layout expects at this position.
        expected: &'static str,
        /// The four tag bytes actually present.
        found: [u8; 4],
    },
    /// The bytes decode but describe an impossible index: the semantic
    /// validation pass (dictionary density, posting order, bitmap
    /// universes, document-length sums, representation rule) rejected
    /// them even though every checksum passed.
    Corrupt {
        /// The section whose contents are inconsistent.
        section: &'static str,
        /// What exactly is wrong.
        detail: String,
    },
    /// Valid snapshot followed by garbage bytes.
    TrailingBytes {
        /// Number of unexpected bytes after the trailer.
        extra: usize,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found}")
            }
            SnapshotError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in snapshot section `{section}`")
            }
            SnapshotError::UnexpectedSection { expected, found } => write!(
                f,
                "expected snapshot section `{expected}`, found {:?}",
                String::from_utf8_lossy(found)
            ),
            SnapshotError::Corrupt { section, detail } => {
                write!(f, "corrupt snapshot section `{section}`: {detail}")
            }
            SnapshotError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after snapshot trailer")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}
