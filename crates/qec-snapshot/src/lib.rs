//! Crash-safe persistence for the frozen QEC index.
//!
//! Every process used to rebuild the whole index in memory from scratch;
//! this crate gives the engine a durable boot path. A snapshot is a
//! single file holding everything [`qec_index::Corpus`] froze: the
//! analyzer configuration and term dictionary, per-document stored
//! metadata, every posting list, and the dense terms' bitmaps as raw
//! word slices (via `Bitset::as_words` / `from_words`). Loading it skips
//! the expensive half of a build — tokenization, stemming, dictionary
//! hashing — and decodes straight into the frozen representations.
//!
//! Layout (all integers little-endian; see [`mod@format`] for the diagram):
//!
//! ```text
//! "QECSNAP1" · version · header-CRC
//! META  corpus counts + analyzer config          (CRC32)
//! DICT  term names in dense-id order             (CRC32)
//! DOCS  title / features / label / length per doc (CRC32)
//! POST  per-term posting lists (doc, tf)         (CRC32)
//! BITS  dense-term bitmaps as u64 word slices    (CRC32)
//! TRLR  whole-file CRC32
//! ```
//!
//! Durability protocol — the previous snapshot is **never clobbered**:
//! [`save_corpus`] encodes into a sibling temp file, `fsync`s it,
//! publishes it with an atomic `rename`, then `fsync`s the parent
//! directory. A crash (or injected fault — sites `snapshot.write`,
//! `snapshot.fsync`) at any step leaves the prior generation loadable.
//!
//! Loading — [`load_corpus`] — **never panics** on bad input: a strict
//! structural pass (magic, version, section framing, per-section CRCs,
//! trailer CRC, exact EOF) and a semantic pass (dictionary density,
//! posting order and ranges, bitmap universes and populations, the
//! hybrid density rule, document-length sums) each reject with a typed
//! [`SnapshotError`]. Per-document term rows are deliberately not
//! stored: the loader rebuilds them as the transpose of the posting
//! lists, so the file cannot hold two disagreeing copies of the corpus.

pub mod crc;
pub mod error;
pub mod format;
mod read;
mod write;

pub use crc::{crc32, Crc32};
pub use error::SnapshotError;
pub use read::{load_corpus, load_corpus_with_summary};
pub use write::save_corpus;

/// What a save produced or a load verified: sizes, counts, and the
/// dictionary fingerprint used to check that a sharded snapshot set
/// belongs to one generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotSummary {
    /// Total file size in bytes.
    pub bytes: u64,
    /// Documents in the corpus.
    pub num_docs: u64,
    /// Dictionary size (distinct analyzed terms).
    pub vocab: u64,
    /// Posting-list slots in the index (`<= vocab`).
    pub index_terms: u64,
    /// Total `(term, doc)` postings.
    pub total_postings: u64,
    /// Terms frozen to the dense bitmap representation.
    pub dense_terms: u64,
    /// CRC32 of the dictionary section payload. Two snapshots with equal
    /// `dict_crc` (and `vocab`) interned the same terms in the same
    /// order, so their `TermId`s are interchangeable — the property a
    /// gather engine needs before trusting per-shard snapshot files.
    pub dict_crc: u32,
}

/// Fault-injection shim: a named IO site that chaos tests can arm
/// (`FailAction::ReturnErr(kind)` surfaces as the corresponding
/// `io::Error`). Compiled to a no-op without the `failpoints` feature.
pub(crate) fn failpoint(site: &'static str) -> std::io::Result<()> {
    #[cfg(feature = "failpoints")]
    qec_failpoint::check(site).map_err(std::io::Error::from)?;
    #[cfg(not(feature = "failpoints"))]
    let _ = site;
    Ok(())
}
