//! Binary layout constants and the bounds-checked reader.
//!
//! ```text
//! offset 0      "QECSNAP1"                 8-byte magic
//!        8      version      u32 LE        format version (currently 1)
//!        12     header_crc   u32 LE        CRC32 of bytes [0, 12)
//!        16     section × 5, fixed order META, DICT, DOCS, POST, BITS:
//!                   tag          4 ASCII bytes
//!                   payload_len  u64 LE
//!                   payload      payload_len bytes
//!                   payload_crc  u32 LE     CRC32 of payload
//!        …      "TRLR"                     trailer tag
//!               file_crc     u32 LE        CRC32 of every byte before "TRLR"
//!        EOF    (anything after the trailer is an error)
//! ```
//!
//! Every multi-byte integer in the file is little-endian. The reader
//! never indexes the buffer directly: all access goes through
//! [`Reader`], whose every method bounds-checks and returns
//! [`SnapshotError::Truncated`] naming what it was reading — that is the
//! property the truncation fuzz suite leans on.

use crate::error::SnapshotError;

/// File magic: identifies a QEC snapshot, format generation 1.
pub const MAGIC: [u8; 8] = *b"QECSNAP1";
/// Current format version.
pub const VERSION: u32 = 1;

/// Corpus-wide counts and the analyzer configuration.
pub const TAG_META: [u8; 4] = *b"META";
/// The analyzed term dictionary, names in dense-id order.
pub const TAG_DICT: [u8; 4] = *b"DICT";
/// Per-document stored metadata (title, features, label, length).
pub const TAG_DOCS: [u8; 4] = *b"DOCS";
/// Per-term posting lists `(doc, tf)`; doc-term rows are its transpose.
pub const TAG_POST: [u8; 4] = *b"POST";
/// Dense-term bitmaps as raw word slices.
pub const TAG_BITS: [u8; 4] = *b"BITS";
/// Trailer: whole-file CRC.
pub const TAG_TRLR: [u8; 4] = *b"TRLR";

/// Bounds-checked cursor over the in-memory snapshot bytes. `context`
/// tracks which structure is being decoded so truncation errors name it.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self {
            buf,
            pos: 0,
            context: "header",
        }
    }

    /// Names the structure subsequent reads decode (used in errors).
    pub fn set_context(&mut self, context: &'static str) {
        self.context = context;
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left past the cursor.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                context: self.context,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn string(&mut self, section: &'static str) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| SnapshotError::Corrupt {
            section,
            detail: format!("invalid utf-8 string: {e}"),
        })
    }
}

/// Appends a `u32`-length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    let len = u32::try_from(s.len()).expect("string over 4 GiB");
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}
