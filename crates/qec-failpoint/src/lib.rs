//! Deterministic fault injection for chaos tests — the std-only,
//! offline substitute for the `fail` crate.
//!
//! Production code declares **named trigger points** (e.g.
//! `"engine.build_pipeline"`) and calls [`check`] at each one; tests
//! **arm** a point with an action — [`FailAction::Panic`],
//! [`FailAction::Delay`], [`FailAction::Error`], or the IO-shaped
//! [`FailAction::ReturnErr`] — through [`arm`] /
//! [`arm_times`], exercise the failure path, and disarm by dropping the
//! returned [`FailGuard`]. Arming is deterministic and explicit: nothing
//! fires unless a test armed it, and `arm_times(_, _, n)` fires exactly
//! `n` times before going inert, so "panic the *first* build, let the
//! retry succeed" is one line of test setup. For soak-style intermittent
//! faults, [`arm_ratio`] fires on roughly 1-in-`n` hits, driven by a
//! seeded xorshift64 so a given seed replays the same firing pattern.
//!
//! Every site also keeps cumulative [`SiteStats`] — arms, disarms, and
//! fires — that survive disarming, so a chaos suite can assert "this
//! fault actually triggered k times across the run" after its guards
//! have dropped.
//!
//! Cost discipline
//! ---------------
//! The hot path of an unarmed process is a single relaxed atomic load
//! ([`check`] returns immediately while nothing is armed). Downstream
//! crates additionally gate their `check` calls behind a `failpoints`
//! cargo feature, so `--no-default-features` builds compile the sites out
//! entirely. The registry itself is a process-wide mutex-guarded map —
//! chaos tests that arm points serialise themselves (e.g.
//! `RUST_TEST_THREADS=1`, or an explicit test-local lock) because the
//! registry is shared by every thread of the test process.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// What an armed trigger point does when reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Panic at the trigger point (exercises unwind / isolation paths).
    Panic,
    /// Sleep this long, then continue normally (exercises deadline and
    /// slow-peer paths).
    Delay(Duration),
    /// Return [`InjectedFailure`] from [`check`] (exercises typed error
    /// paths without unwinding).
    Error,
    /// Return [`InjectedFailure`] carrying an [`std::io::ErrorKind`], so
    /// IO call sites (snapshot write/fsync/load) can surface a precise
    /// recoverable `io::Error` instead of panicking and poisoning worker
    /// threads. Convert with `std::io::Error::from(failure)`.
    ReturnErr(std::io::ErrorKind),
}

/// The typed error [`check`] returns at a point armed with
/// [`FailAction::Error`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFailure {
    /// Name of the trigger point that fired.
    pub site: &'static str,
    /// The IO error kind carried by [`FailAction::ReturnErr`]; `None`
    /// when the plain [`FailAction::Error`] fired.
    pub kind: Option<std::io::ErrorKind>,
}

impl InjectedFailure {
    /// A plain (non-IO) injected failure at `site`.
    pub fn at(site: &'static str) -> Self {
        InjectedFailure { site, kind: None }
    }
}

impl std::fmt::Display for InjectedFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            Some(kind) => write!(
                f,
                "injected failure at failpoint `{}` ({kind:?})",
                self.site
            ),
            None => write!(f, "injected failure at failpoint `{}`", self.site),
        }
    }
}

impl std::error::Error for InjectedFailure {}

impl From<InjectedFailure> for std::io::Error {
    fn from(failure: InjectedFailure) -> Self {
        let kind = failure.kind.unwrap_or(std::io::ErrorKind::Other);
        std::io::Error::new(kind, failure.to_string())
    }
}

#[derive(Debug)]
struct Armed {
    action: FailAction,
    /// Fires left before the point goes inert; `None` = unlimited.
    remaining: Option<usize>,
    /// Times this point fired since arming (inert hits don't count).
    hits: u64,
    /// Probabilistic gate: `(denominator, rng_state)`. When present, each
    /// hit rolls the xorshift64 state and fires only on `roll % denom ==
    /// 0`; non-firing rolls spend neither `remaining` nor `hits`.
    ratio: Option<(u32, u64)>,
}

/// Cumulative per-site counters that survive disarming (unlike
/// [`hits`], which resets with each arm). `fires` counts actual
/// triggers — inert hits and losing [`arm_ratio`] rolls don't count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteStats {
    /// Times the site was armed (re-arms included).
    pub arms: u64,
    /// Times the site was disarmed (guard drops and explicit
    /// [`disarm`] calls on an armed site).
    pub disarms: u64,
    /// Times the site fired an action since process start.
    pub fires: u64,
}

#[derive(Debug, Default)]
struct Registry {
    armed: HashMap<&'static str, Armed>,
    stats: HashMap<&'static str, SiteStats>,
}

/// Number of armed entries, mirrored out of the registry so [`check`] can
/// skip the lock entirely while nothing is armed.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

fn registry() -> MutexGuard<'static, Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Mutex::new(Registry::default()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn sync_active(reg: &Registry) {
    ACTIVE.store(reg.armed.len(), Ordering::Release);
}

/// Arms `name` with `action` until the returned guard drops. Re-arming an
/// already-armed name replaces its action and resets its counters.
#[must_use = "dropping the guard disarms the failpoint immediately"]
pub fn arm(name: &'static str, action: FailAction) -> FailGuard {
    arm_inner(name, action, None, None)
}

/// Arms `name` to fire exactly `times` times, then go inert (still armed,
/// never firing) until the guard drops.
#[must_use = "dropping the guard disarms the failpoint immediately"]
pub fn arm_times(name: &'static str, action: FailAction, times: usize) -> FailGuard {
    arm_inner(name, action, Some(times), None)
}

/// Arms `name` to fire intermittently: each hit fires with probability
/// `1/denominator` (a seeded xorshift64 roll — equal seeds replay equal
/// firing patterns). Losing rolls pass through without counting as hits.
/// `denominator` of 0 or 1 fires on every hit, like [`arm`].
#[must_use = "dropping the guard disarms the failpoint immediately"]
pub fn arm_ratio(name: &'static str, action: FailAction, denominator: u32, seed: u64) -> FailGuard {
    // xorshift64 has one fixed point at 0; nudge the seed off it.
    arm_inner(name, action, None, Some((denominator.max(1), seed | 1)))
}

fn arm_inner(
    name: &'static str,
    action: FailAction,
    remaining: Option<usize>,
    ratio: Option<(u32, u64)>,
) -> FailGuard {
    let mut reg = registry();
    reg.armed.insert(
        name,
        Armed {
            action,
            remaining,
            hits: 0,
            ratio,
        },
    );
    reg.stats.entry(name).or_default().arms += 1;
    sync_active(&reg);
    FailGuard { name }
}

/// Disarms `name` (no-op when not armed). Prefer dropping the
/// [`FailGuard`]; this exists for tests that hand guards across scopes.
pub fn disarm(name: &str) {
    let mut reg = registry();
    if reg.armed.remove(name).is_some() {
        if let Some(stats) = reg.stats.get_mut(name) {
            stats.disarms += 1;
        }
    }
    sync_active(&reg);
}

/// Times `name` fired since it was last armed (`0` when never armed).
pub fn hits(name: &str) -> u64 {
    registry().armed.get(name).map_or(0, |a| a.hits)
}

/// Cumulative arm/disarm/fire counters for `name` since process start.
/// Unlike [`hits`], these survive disarming and re-arming.
pub fn site_stats(name: &str) -> SiteStats {
    registry().stats.get(name).copied().unwrap_or_default()
}

/// The trigger point call production code places at a named site.
///
/// Unarmed (the overwhelmingly common case): one relaxed atomic load,
/// then `Ok(())`. Armed: [`FailAction::Panic`] panics, \
/// [`FailAction::Delay`] sleeps then returns `Ok(())`, and
/// [`FailAction::Error`] returns `Err(InjectedFailure)` for the caller's
/// typed error path ([`FailAction::ReturnErr`] likewise, with its
/// [`std::io::ErrorKind`] attached). A point armed with [`arm_times`] that has exhausted
/// its fires is inert and returns `Ok(())`, as is a hit whose
/// [`arm_ratio`] roll loses.
pub fn check(name: &'static str) -> Result<(), InjectedFailure> {
    if ACTIVE.load(Ordering::Acquire) == 0 {
        return Ok(());
    }
    let action = {
        let mut reg = registry();
        let Some(armed) = reg.armed.get_mut(name) else {
            return Ok(());
        };
        if let Some((denom, rng)) = &mut armed.ratio {
            let mut x = *rng;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *rng = x;
            if x % u64::from(*denom) != 0 {
                return Ok(()); // losing roll: pass through silently
            }
        }
        match &mut armed.remaining {
            Some(0) => return Ok(()), // exhausted → inert
            Some(n) => *n -= 1,
            None => {}
        }
        armed.hits += 1;
        let action = armed.action;
        reg.stats.entry(name).or_default().fires += 1;
        action
    };
    // Act outside the registry lock so a panicking or sleeping site never
    // blocks other threads' checks.
    match action {
        FailAction::Panic => panic!("failpoint `{name}`: injected panic"),
        FailAction::Delay(d) => {
            std::thread::sleep(d);
            Ok(())
        }
        FailAction::Error => Err(InjectedFailure {
            site: name,
            kind: None,
        }),
        FailAction::ReturnErr(kind) => Err(InjectedFailure {
            site: name,
            kind: Some(kind),
        }),
    }
}

/// Disarms its failpoint on drop, so a panicking test never leaks an
/// armed point into its siblings.
#[derive(Debug)]
pub struct FailGuard {
    name: &'static str,
}

impl FailGuard {
    /// The armed point's name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for FailGuard {
    fn drop(&mut self) {
        disarm(self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    /// The registry is process-global; these tests serialise on one lock
    /// so `cargo test` parallelism cannot interleave arming.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn unarmed_check_is_ok() {
        let _s = serial();
        assert_eq!(check("tests.nothing"), Ok(()));
        assert_eq!(hits("tests.nothing"), 0);
    }

    #[test]
    fn error_action_returns_typed_failure_until_guard_drops() {
        let _s = serial();
        let guard = arm("tests.err", FailAction::Error);
        assert_eq!(check("tests.err"), Err(InjectedFailure::at("tests.err")));
        assert_eq!(
            check("tests.err").unwrap_err().to_string(),
            "injected failure at failpoint `tests.err`"
        );
        assert_eq!(hits("tests.err"), 2);
        drop(guard);
        assert_eq!(check("tests.err"), Ok(()));
        assert_eq!(hits("tests.err"), 0, "disarm clears counters");
    }

    #[test]
    fn arm_times_goes_inert_after_n_fires() {
        let _s = serial();
        let _g = arm_times("tests.twice", FailAction::Error, 2);
        assert!(check("tests.twice").is_err());
        assert!(check("tests.twice").is_err());
        assert!(check("tests.twice").is_ok(), "third hit is inert");
        assert!(check("tests.twice").is_ok());
        assert_eq!(hits("tests.twice"), 2);
    }

    #[test]
    fn panic_action_panics_and_guard_disarms_on_unwind() {
        let _s = serial();
        let result = std::panic::catch_unwind(|| {
            let _g = arm("tests.panic", FailAction::Panic);
            let _ = check("tests.panic");
        });
        assert!(result.is_err());
        // The guard dropped during the unwind: the point is disarmed.
        assert_eq!(check("tests.panic"), Ok(()));
    }

    #[test]
    fn delay_action_sleeps_then_continues() {
        let _s = serial();
        let _g = arm("tests.delay", FailAction::Delay(Duration::from_millis(30)));
        let t0 = Instant::now();
        assert_eq!(check("tests.delay"), Ok(()));
        assert!(
            t0.elapsed() >= Duration::from_millis(25),
            "{:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn rearming_replaces_action_and_resets_counters() {
        let _s = serial();
        let _g1 = arm("tests.rearm", FailAction::Error);
        assert!(check("tests.rearm").is_err());
        let _g2 = arm_times("tests.rearm", FailAction::Delay(Duration::ZERO), 1);
        assert_eq!(check("tests.rearm"), Ok(()), "replaced by a delay");
        assert_eq!(hits("tests.rearm"), 1, "counters reset by re-arm");
    }

    #[test]
    fn ratio_fires_intermittently_and_deterministically() {
        let _s = serial();
        let fired = |seed| {
            let _g = arm_ratio("tests.ratio", FailAction::Error, 4, seed);
            (0..64).filter(|_| check("tests.ratio").is_err()).count()
        };
        let first = fired(11);
        assert!(
            first > 0 && first < 64,
            "1-in-4 over 64 hits should fire some but not all, got {first}"
        );
        assert_eq!(first, fired(11), "equal seeds replay the same pattern");
        assert_ne!(hits("tests.ratio"), 64, "losing rolls don't count as hits");
    }

    #[test]
    fn ratio_denominator_of_one_fires_every_hit() {
        let _s = serial();
        let _g = arm_ratio("tests.ratio_all", FailAction::Error, 1, 3);
        for _ in 0..8 {
            assert!(check("tests.ratio_all").is_err());
        }
        assert_eq!(hits("tests.ratio_all"), 8);
    }

    #[test]
    fn return_err_carries_an_io_kind_without_unwinding() {
        let _s = serial();
        use std::io::ErrorKind;
        let before = site_stats("tests.io");
        {
            let _g = arm("tests.io", FailAction::ReturnErr(ErrorKind::WouldBlock));
            let failure = check("tests.io").unwrap_err();
            assert_eq!(failure.site, "tests.io");
            assert_eq!(failure.kind, Some(ErrorKind::WouldBlock));
            assert!(failure.to_string().contains("WouldBlock"));
            // The whole point: converts to a recoverable io::Error instead
            // of panicking inside an IO routine.
            let io: std::io::Error = failure.into();
            assert_eq!(io.kind(), ErrorKind::WouldBlock);
        }
        assert_eq!(check("tests.io"), Ok(()), "guard drop disarms");
        // Per-site stats cover ReturnErr fires exactly like other actions.
        let after = site_stats("tests.io");
        assert_eq!(after.arms, before.arms + 1);
        assert_eq!(after.disarms, before.disarms + 1);
        assert_eq!(after.fires, before.fires + 1);
    }

    #[test]
    fn plain_error_converts_to_an_other_io_error() {
        let io: std::io::Error = InjectedFailure::at("tests.convert").into();
        assert_eq!(io.kind(), std::io::ErrorKind::Other);
    }

    #[test]
    fn site_stats_survive_disarm_and_rearm() {
        let _s = serial();
        let before = site_stats("tests.stats");
        {
            let _g = arm("tests.stats", FailAction::Error);
            assert!(check("tests.stats").is_err());
            assert!(check("tests.stats").is_err());
        }
        assert_eq!(hits("tests.stats"), 0, "per-arming hits reset on disarm");
        {
            let _g = arm_times("tests.stats", FailAction::Error, 1);
            assert!(check("tests.stats").is_err());
            assert!(check("tests.stats").is_ok(), "inert hits don't fire");
        }
        let after = site_stats("tests.stats");
        assert_eq!(after.arms, before.arms + 2);
        assert_eq!(after.disarms, before.disarms + 2);
        assert_eq!(after.fires, before.fires + 3);
        // Disarming an unarmed site is not counted.
        disarm("tests.stats");
        assert_eq!(site_stats("tests.stats").disarms, after.disarms);
    }
}
